"""Block placement policies: Hadoop's rack-aware default and HOG's
site-aware extension.

Hadoop's default (rack awareness): first replica on the writer's node,
second on a different rack, third on the same rack as the second, further
replicas spread randomly.  HOG re-interprets "rack" as OSG *site* and adds
a third failure level — "HOG's data placement and replication policy takes
the site failure into account when it places data blocks" (§I) — so
replicas of a block are spread across as many sites as possible, guarding
against whole-site preemption bursts.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..net.topology import NetworkTopology

__all__ = ["PlacementError", "PlacementPolicy", "SiteAwarePolicy",
           "RandomPolicy", "LiveHostIndex"]


class PlacementError(Exception):
    """No viable targets exist for a block."""


class LiveHostIndex:
    """Event-maintained per-site live-host lists for the placement hot path.

    :class:`SiteAwarePolicy` used to rebuild a ``site → hosts`` grouping
    from the full candidate list for *every block placed* — the ROADMAP's
    10k-node placement cost center.  The namenode keeps one of these
    current instead (O(1) add/discard via swap-pop and a position map),
    and placement draws from the cached lists directly.

    Draws permute a site's list in place (swap-to-end); that is harmless —
    each list is a set of hosts whose order carries no meaning — and every
    swap goes through :meth:`swap` so positions stay exact.  All iteration
    orders are insertion-ordered (dicts), never hash-ordered, preserving
    the sim's hash-seed determinism.
    """

    __slots__ = ("_topology", "_lists", "_pos")

    def __init__(self, topology: NetworkTopology) -> None:
        self._topology = topology
        self._lists: Dict[str, List[str]] = {}
        #: host → (site, index into that site's list).
        self._pos: Dict[str, Tuple[str, int]] = {}

    def __contains__(self, host: str) -> bool:
        return host in self._pos

    def __len__(self) -> int:
        return len(self._pos)

    def add(self, host: str) -> None:
        """Start tracking ``host`` (idempotent)."""
        if host in self._pos:
            return
        site = self._topology.site_of(host)
        lst = self._lists.setdefault(site, [])
        self._pos[host] = (site, len(lst))
        lst.append(host)

    def discard(self, host: str) -> None:
        """Stop tracking ``host`` (idempotent); O(1) swap-pop."""
        entry = self._pos.pop(host, None)
        if entry is None:
            return
        site, i = entry
        lst = self._lists[site]
        last = lst.pop()
        if last != host:
            lst[i] = last
            self._pos[last] = (site, i)
        if not lst:
            del self._lists[site]

    def site_of(self, host: str) -> Optional[str]:
        """Site of a tracked host, or ``None`` if untracked."""
        entry = self._pos.get(host)
        return entry[0] if entry is not None else None

    def sites(self) -> List[str]:
        """Sites with at least one tracked host (insertion order)."""
        return list(self._lists)

    def site_size(self, site: str) -> int:
        """Tracked hosts at ``site``."""
        return len(self._lists.get(site, ()))

    def site_list(self, site: str) -> List[str]:
        """The *shared* mutable host list of ``site`` — callers must only
        reorder it through :meth:`swap`."""
        return self._lists[site]

    def swap(self, site: str, i: int, j: int) -> None:
        """Exchange two positions of a site's list, keeping the position
        map consistent."""
        if i == j:
            return
        lst = self._lists[site]
        lst[i], lst[j] = lst[j], lst[i]
        self._pos[lst[i]] = (site, i)
        self._pos[lst[j]] = (site, j)


class PlacementPolicy:
    """Interface: choose datanode targets for a block's replicas.

    ``space_ok`` is a callback ``host -> bool`` testing whether the
    datanode can accept one more block.
    """

    def choose_targets(
        self,
        writer: Optional[str],
        count: int,
        existing: Set[str],
        candidates: Sequence[str],
        space_ok: Callable[[str], bool],
        site_index: Optional[LiveHostIndex] = None,
    ) -> List[str]:
        """Return up to ``count`` hosts for new replicas.

        Parameters
        ----------
        writer:
            Host initiating the write (gets the first replica if it is a
            viable datanode), or ``None`` for re-replication.
        count:
            Number of new replicas wanted.
        existing:
            Hosts already holding (or receiving) a replica; never chosen.
        candidates:
            Live datanode hosts.
        space_ok:
            Capacity predicate.
        site_index:
            Optional pre-grouped view of ``candidates`` (must track the
            same host set).  Policies that group by site use it to skip
            the per-call grouping work; others may ignore it.
        """
        raise NotImplementedError


class SiteAwarePolicy(PlacementPolicy):
    """Spread replicas across failure domains (racks or sites).

    The same code implements both stock rack awareness and HOG site
    awareness: the failure domain is whatever the topology resolver
    reports.  Selection order:

    1. the writer's own node (data locality for the writer),
    2. a node in a *different* domain than the first replica,
    3. remaining replicas round-robin over the domains with the fewest
       replicas so far, random node within the domain.
    """

    def __init__(self, topology: NetworkTopology, rng: np.random.Generator) -> None:
        self.topology = topology
        self.rng = rng

    def choose_targets(self, writer, count, existing, candidates, space_ok,
                       site_index=None):
        """Pick targets per the site-spread rules (see class docstring).

        Capacity is probed lazily (only for hosts actually considered) and
        random tie-breaking uses swap-pop draws instead of shuffling every
        site's full host list — placement cost scales with the replica
        count, not the cluster size.  With ``site_index`` even the per-call
        ``site → hosts`` grouping disappears: draws run directly against
        the cached per-site lists (see :class:`LiveHostIndex`)."""
        if site_index is not None:
            return self._choose_from_index(writer, count, existing,
                                           space_ok, site_index)
        chosen: List[str] = []
        taken: Set[str] = set(existing)
        by_site: Dict[str, List[str]] = {}
        for h in candidates:
            if h not in taken:
                by_site.setdefault(self.topology.site_of(h), []).append(h)
        if not by_site:
            return []

        site_load: Dict[str, int] = {s: 0 for s in by_site}
        # Pure commutative count — the result is order-independent.
        for h in taken:  # set-order-ok
            s = self.topology.site_of(h)
            if s in site_load:
                site_load[s] += 1

        def drop_if_empty(site: str) -> None:
            if not by_site[site]:
                del by_site[site]
                del site_load[site]

        def take(host: str, site: str) -> None:
            chosen.append(host)
            taken.add(host)
            site_load[site] += 1
            drop_if_empty(site)

        def pop_random_viable(site: str) -> Optional[str]:
            """Draw hosts from ``site`` without replacement until one has
            room (full nodes are dropped from further consideration)."""
            bucket = by_site[site]
            while bucket:
                i = int(self.rng.integers(len(bucket)))
                host = bucket[i]
                bucket[i] = bucket[-1]
                bucket.pop()
                if space_ok(host):
                    return host
            return None

        # 1. Writer-local replica.
        if writer is not None and count > 0 and writer not in taken:
            wsite = self.topology.site_of(writer)
            bucket = by_site.get(wsite)
            if bucket and writer in bucket and space_ok(writer):
                bucket.remove(writer)
                take(writer, wsite)

        # 2. Then always pick from the least-loaded domain (which realises
        #    "one other rack/site" for the second replica and an even
        #    spread for the rest).
        while len(chosen) < count and by_site:
            site = min(site_load, key=lambda s: (site_load[s], s))
            host = pop_random_viable(site)
            if host is None:
                drop_if_empty(site)
                continue
            take(host, site)

        return chosen

    def _choose_from_index(self, writer, count, existing, space_ok,
                           index: LiveHostIndex) -> List[str]:
        """The cached-index fast path: same selection rules, zero grouping.

        Per-call state is one ``site → remaining draw window`` map.  A draw
        picks a random host inside the site's window, swaps it to the
        window's end, and shrinks the window — so within one call no host
        is considered twice (taken or full hosts fall out of the window),
        while across calls the lists merely end up permuted."""
        chosen: List[str] = []
        taken: Set[str] = set(existing)
        #: site → how many of its hosts are still drawable this call.
        windows: Dict[str, int] = {s: index.site_size(s)
                                   for s in index.sites()}
        site_load: Dict[str, int] = {s: 0 for s in windows}
        # Pure commutative count — the result is order-independent.
        for h in taken:  # set-order-ok
            s = self.topology.site_of(h)
            if s in site_load:
                site_load[s] += 1

        def draw(site: str) -> Optional[str]:
            lst = index.site_list(site)
            window = windows[site]
            while window > 0:
                i = int(self.rng.integers(window))
                host = lst[i]
                index.swap(site, i, window - 1)
                window -= 1
                if host not in taken and space_ok(host):
                    windows[site] = window
                    return host
            windows[site] = 0
            return None

        # 1. Writer-local replica.
        if writer is not None and count > 0 and writer not in taken \
                and writer in index and space_ok(writer):
            wsite = index.site_of(writer)
            chosen.append(writer)
            taken.add(writer)
            site_load[wsite] += 1

        # 2. Always pick from the least-loaded domain.
        while len(chosen) < count:
            open_sites = [s for s in windows if windows[s] > 0]
            if not open_sites:
                break
            site = min(open_sites, key=lambda s: (site_load[s], s))
            host = draw(site)
            if host is None:
                continue
            chosen.append(host)
            taken.add(host)
            site_load[site] += 1
        return chosen


class RandomPolicy(PlacementPolicy):
    """Topology-blind placement — the ablation baseline for site awareness
    (what HOG would do if the topology script were absent and every node
    fell into the default rack)."""

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    def choose_targets(self, writer, count, existing, candidates, space_ok,
                       site_index=None):
        """Pick ``count`` random viable hosts (writer-local first);
        ``site_index`` is ignored (this policy is topology-blind)."""
        taken = set(existing)
        viable = [h for h in candidates if h not in taken and space_ok(h)]
        chosen: List[str] = []
        if writer is not None and writer in viable:
            chosen.append(writer)
            viable.remove(writer)
        n = min(count - len(chosen), len(viable))
        if n > 0:
            picks = self.rng.choice(len(viable), size=n, replace=False)
            chosen.extend(viable[i] for i in picks)
        return chosen[:count]
