"""The simulated HDFS Namenode: namespace, block map, failure detection,
and re-replication.

The namenode is the stable "master server" of §III-B — it runs on the
central server and is a single point of failure we do not fail.  It:

- tracks datanodes via heartbeats and declares them dead after
  ``heartbeat_timeout`` (stock ~15 min; HOG 30 s),
- maintains the block → replica-locations map,
- re-replicates blocks that fall below their file's replication target,
  most-endangered first,
- invalidates excess replicas when nodes return.

Note that a *zombie* datanode (§IV-D1) keeps heartbeating, so the
namenode continues to count its replicas — silently degrading real
availability until the datanode's disk self-check (if enabled) kills it.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..net.topology import NetworkTopology
from ..sim.engine import Simulator
from ..sim.events import Interrupt
from ..sim.monitor import CounterSet
from .block import Block, BlockInfo, FileInfo
from .config import HdfsConfig
from .datanode import Datanode
from .placement import LiveHostIndex, PlacementPolicy

__all__ = ["Namenode", "DatanodeDescriptor", "HdfsError"]


class HdfsError(Exception):
    """Namespace operation failed."""


class DatanodeDescriptor:
    """Namenode-side view of one datanode."""

    __slots__ = ("datanode", "last_heartbeat", "alive")

    def __init__(self, datanode: Datanode, now: float) -> None:
        self.datanode = datanode
        self.last_heartbeat = now
        #: Namenode's belief — may lag reality by up to the timeout.
        self.alive = True

    @property
    def host(self) -> str:
        """Hostname of the tracked datanode."""
        return self.datanode.host


class Namenode:
    """Master metadata server for the simulated HDFS."""

    def __init__(self, sim: Simulator, topology: NetworkTopology,
                 placement: PlacementPolicy,
                 config: Optional[HdfsConfig] = None) -> None:
        self.sim = sim
        self.topology = topology
        self.placement = placement
        self.config = config or HdfsConfig()
        self.config.validate()

        self._files: Dict[str, FileInfo] = {}
        self._blocks: Dict[int, BlockInfo] = {}
        self._block_file: Dict[int, str] = {}
        self._nodes: Dict[str, DatanodeDescriptor] = {}
        self._host_blocks: Dict[str, Dict[int, None]] = {}
        #: Under-replicated block ids — maintained *incrementally* on every
        #: replica add/remove (heartbeat re-registration, death, commit),
        #: so the replication monitor never scans the block map.
        self._needed: Dict[int, None] = {}
        #: Delta-driven replication work queue: a lazy (live-replica-count,
        #: block id) min-heap fed by the same replica add/remove events
        #: that maintain ``_needed``.  The monitor pops most-endangered
        #: blocks instead of re-sorting the whole needed set every tick;
        #: blocks waiting only on in-flight copies leave the queue and are
        #: re-queued by ``block_received`` / replication-failure events.
        self._repl_heap: List[Tuple[int, int]] = []
        #: block id → priority of its one *live* heap entry (stale filter).
        self._repl_prio: Dict[int, int] = {}
        #: Terminal lost-set: blocks with ZERO believed replicas.  They
        #: leave the under-replication queue entirely (no source exists,
        #: so scheduling work for them is a hot loop) and are resurrected
        #: by a later ``block_received`` — e.g. a blacked-out site healing
        #: and its datanodes re-registering with intact disks.
        self._lost_blocks: Dict[int, None] = {}
        #: Replication retry backoff: block id → sim time before which the
        #: monitor will not reconsider it (set when a block could not be
        #: scheduled: no live source, no eligible target, or every source
        #: at its stream cap).  Entries are promoted back into the work
        #: queue when due, or immediately on a membership event.
        self._repl_deferred: Dict[int, float] = {}
        #: Lazy (retry time, block id) min-heap over ``_repl_deferred``.
        self._deferred_heap: List[Tuple[float, int]] = []
        #: Namenode-side "trash": host → replica ids the datanode must
        #: delete (orphaned replicas found when a re-registering node's
        #: block report is reconciled).  Drained a bounded batch per
        #: heartbeat (``invalidate_work_per_heartbeat``).
        self._invalidate_queue: Dict[str, Dict[int, None]] = {}
        #: Believed-alive hosts (insertion-ordered dict as a set): an O(live)
        #: answer for placement instead of an O(all datanodes) scan per
        #: scheduled block.
        self._live_hosts: Dict[str, None] = {}
        #: The same host set grouped per site, maintained event-driven —
        #: placement draws from these cached lists instead of regrouping
        #: the live list for every block (the 10k-node hot path).
        self._live_index = LiveHostIndex(topology)
        #: (believed expiry time, host) heap for the heartbeat monitor —
        #: entries are lazily revalidated against ``last_heartbeat`` on pop
        #: and re-pushed, so each monitor tick costs O(expiring) instead of
        #: O(all datanodes).
        self._hb_heap: List[Tuple[float, str]] = []
        self._next_block_id = 0
        self.counters = CounterSet()
        #: Optional :class:`~repro.obs.trace.Tracer`; datanodes read it
        #: off their namenode for HDFS flow spans, so dynamically
        #: provisioned nodes need no per-node wiring.
        self.tracer = None
        #: Called with the hostname whenever a datanode is declared dead.
        self.dead_node_listeners: List[Callable[[str], None]] = []
        self._monitors_started = False

    # -- monitors ---------------------------------------------------------------
    def start(self) -> None:
        """Start the heartbeat and replication monitor loops."""
        if self._monitors_started:
            return
        self._monitors_started = True
        self.sim.process(self._heartbeat_monitor(), name="nn-hb-monitor")
        self.sim.process(self._replication_monitor(), name="nn-repl-monitor")

    def heartbeat_interval(self) -> float:
        """Per-datanode heartbeat period: the configured floor, lengthened
        as the cluster grows so the namenode's cluster-wide heartbeat
        rate stays near ``config.heartbeats_per_second``."""
        rate = self.config.heartbeats_per_second
        base = self.config.heartbeat_interval
        if rate <= 0:
            return base
        return max(base, len(self._live_hosts) / rate)

    def heartbeat_timeout(self) -> float:
        """Effective liveness timeout: the configured value, stretched to
        several adaptive periods so scaled-up clusters do not flap
        datanodes whose period exceeds the configured timeout."""
        return max(self.config.heartbeat_timeout,
                   4.0 * self.heartbeat_interval())

    def _heartbeat_monitor(self):
        try:
            while True:
                yield self.sim.timeout(self.config.heartbeat_recheck_period)
                now = self.sim.now
                # Re-derive per tick: tracks the adaptive period.
                timeout = self.heartbeat_timeout()
                heap = self._hb_heap
                while heap and heap[0][0] <= now:
                    _, host = heapq.heappop(heap)
                    desc = self._nodes.get(host)
                    if desc is None or not desc.alive:
                        continue  # stale entry (dead or replaced node)
                    deadline = desc.last_heartbeat + timeout
                    if deadline <= now:
                        self._declare_dead(desc)
                    else:
                        # Heartbeats arrived since the entry was pushed:
                        # re-aim at the refreshed deadline.
                        heapq.heappush(heap, (deadline, host))
        except Interrupt:
            return

    def _replication_monitor(self):
        try:
            while True:
                yield self.sim.timeout(self.config.replication_monitor_period)
                self._schedule_replication_work()
        except Interrupt:
            return

    # -- datanode protocol ---------------------------------------------------------
    def register_datanode(self, datanode: Datanode) -> None:
        """First contact from a datanode ("the slave servers will report to
        the single master server").  Resolves its site via the topology
        script and starts tracking heartbeats."""
        host = datanode.host
        self.topology.add_host(host)
        self._nodes[host] = DatanodeDescriptor(datanode, self.sim.now)
        self._host_blocks.setdefault(host, {})
        self._live_hosts[host] = None
        self._live_index.add(host)
        heapq.heappush(self._hb_heap,
                       (self.sim.now + self.heartbeat_timeout(), host))
        self.counters.incr("datanodes_registered")
        # A restarted node may still hold replicas from a previous life;
        # its registration report is authoritative for the host, so it is
        # reconciled (stale believed replicas dropped, orphans trashed).
        self.process_block_report(host, datanode.block_report(),
                                  reconcile=True)
        # Membership changed: blocks parked on the retry backoff may have
        # a target (or a source) again.
        self._rearm_deferred_replications()

    def heartbeat(self, datanode: Datanode) -> None:
        """Periodic datanode report.  A heartbeat from a node previously
        declared dead re-registers it (Hadoop's re-registration path)."""
        desc = self._nodes.get(datanode.host)
        if desc is None or desc.datanode is not datanode:
            self.register_datanode(datanode)
            return
        desc.last_heartbeat = self.sim.now
        if not desc.alive:
            desc.alive = True
            self._live_hosts[datanode.host] = None
            self._live_index.add(datanode.host)
            heapq.heappush(self._hb_heap,
                           (self.sim.now + self.heartbeat_timeout(),
                            datanode.host))
            self.counters.incr("datanodes_reregistered")
            self.process_block_report(datanode.host, datanode.block_report(),
                                      reconcile=True)
            self._rearm_deferred_replications()
        self._dispatch_invalidations(desc)

    def _declare_dead(self, desc: DatanodeDescriptor) -> None:
        """Heartbeat timeout fired: drop the node's replicas and queue
        re-replication ("Data blocks stored on this node will be considered
        lost and the Namenode will automatically replicate those blocks")."""
        desc.alive = False
        host = desc.host
        self._live_hosts.pop(host, None)
        self._live_index.discard(host)
        self.counters.incr("datanodes_declared_dead")
        # Pending delete commands are moot — if the node ever returns, its
        # re-registration report is reconciled and re-derives the orphans.
        self._invalidate_queue.pop(host, None)
        for bid in list(self._host_blocks.get(host, ())):
            self._remove_replica(bid, host)
        for listener in self.dead_node_listeners:
            listener(host)

    # -- block map maintenance --------------------------------------------------------
    def process_block_report(self, host: str, block_ids,
                             reconcile: bool = False) -> None:
        """Aggregate block report from ``host`` — sent at (re-)registration
        and then periodically (``HdfsConfig.block_report_interval``).

        One set-difference against the believed replica map: only replicas
        the namenode does not already credit to the host go through the
        full per-replica path — for the common re-registration (believed
        state intact) the whole report is a dictionary-lookup sweep with
        no bookkeeping writes.

        ``reconcile=True`` (the **(re-)registration** path only) treats
        the report as authoritative for the host: replicas it carries for
        files that no longer exist are queued for deletion (the namenode
        "trash" — drained over subsequent heartbeats), and believed
        replicas the report does NOT carry are dropped.  Periodic reports
        stay additive-only on purpose — a §IV-D1 zombie keeps sending
        *empty* reports, and reconciling those would clear its believed
        replicas and silently repair the availability bug this repo
        exists to model."""
        self.counters.incr("block_reports")
        believed = self._host_blocks.setdefault(host, {})
        blocks = self._blocks
        carried = 0
        new = []
        reported: Optional[Dict[int, None]] = {} if reconcile else None
        for bid in block_ids:
            carried += 1
            if reported is not None:
                reported[bid] = None
                if bid not in blocks:
                    # Orphaned replica: its file was deleted while the
                    # node was unreachable.  Tell the node to free it.
                    self._queue_invalidation(host, bid)
                    self.counters.incr("orphan_replicas_found")
                    continue
            if bid not in believed and bid in blocks:
                new.append(bid)
        # ``block_report_blocks`` counts replicas *carried* by reports (the
        # aggregate scan volume), not just the previously-unknown ones —
        # registration reports from empty nodes contribute nothing, but
        # the periodic reports from loaded nodes dominate it.
        self.counters.incr("block_report_blocks", carried)
        if reported is not None and len(reported) < len(believed):
            # Stale believed replicas (credited to the host, absent from
            # its authoritative report): drop them so the block map
            # matches reality and repair can start.
            stale = [bid for bid in believed if bid not in reported]
            self.counters.incr("stale_replicas_reconciled", len(stale))
            for bid in stale:
                self._remove_replica(bid, host)
        for bid in new:
            self.block_received(bid, host)

    def block_received(self, block_id: int, host: str) -> None:
        """A datanode finalized a replica of ``block_id``."""
        info = self._blocks.get(block_id)
        if info is None:
            return  # file deleted while the replica was in flight
        info.replicas[host] = None
        info.pending_targets.pop(host, None)
        self._host_blocks.setdefault(host, {})[block_id] = None
        target = self._replication_target(block_id)
        # Membership test, not ``pop(..., None)``: the dict-as-set stores
        # None values, which would alias the missing-key sentinel.
        if block_id in self._lost_blocks:
            del self._lost_blocks[block_id]
            # Resurrection: a replica of a lost block resurfaced (a healed
            # site's datanode re-registered with its disk intact).  The
            # block rejoins the normal repair pipeline.
            self.counters.incr("blocks_resurrected")
            if info.live_replica_count < target:
                self._needed[block_id] = None
        if info.live_replica_count >= target:
            self._needed.pop(block_id, None)
        elif block_id in self._needed:
            # Still short, but the danger level changed: re-aim the work
            # queue (the old heap entry goes stale).
            self._queue_replication(block_id, info)
        if info.live_replica_count > target:
            self._invalidate_excess(info, target)

    def _remove_replica(self, block_id: int, host: str) -> None:
        info = self._blocks.get(block_id)
        if info is None:
            return
        info.replicas.pop(host, None)
        self._host_blocks.get(host, {}).pop(block_id, None)
        if info.live_replica_count == 0:
            # Terminal (for now): no live source exists, so the block
            # leaves the work queue entirely instead of being rescheduled
            # forever.  A later ``block_received`` resurrects it.
            self.counters.incr("blocks_all_replicas_lost")
            self._needed.pop(block_id, None)
            self._repl_prio.pop(block_id, None)  # heap entry goes stale
            self._repl_deferred.pop(block_id, None)
            self._lost_blocks[block_id] = None
        elif info.live_replica_count < self._replication_target(block_id):
            self._needed[block_id] = None
            self._queue_replication(block_id, info)

    def _queue_replication(self, block_id: int,
                           info: Optional[BlockInfo] = None) -> None:
        """(Re-)arm the replication work queue for one needed block."""
        if info is None:
            info = self._blocks.get(block_id)
            if info is None:
                return
        prio = info.live_replica_count
        self._repl_prio[block_id] = prio
        heapq.heappush(self._repl_heap, (prio, block_id))
        # An explicit re-queue supersedes any retry backoff in force.
        self._repl_deferred.pop(block_id, None)

    def _defer_replication(self, block_id: int) -> None:
        """Park an unschedulable block on the retry backoff.

        Without this, a block with no eligible target (e.g. every
        off-site node down during a full-site blackout) is popped and
        re-pushed by EVERY monitor tick — a deterministic hot requeue
        loop.  Deferred blocks re-arm after ``replication_retry_backoff``
        sim-seconds, or immediately when membership changes."""
        until = self.sim.now + self.config.replication_retry_backoff
        self._repl_deferred[block_id] = until
        heapq.heappush(self._deferred_heap, (until, block_id))
        self.counters.incr("replication_retries_deferred")

    def _promote_deferred_replications(self) -> None:
        """Move due backoff entries back into the work queue (lazy heap:
        entries invalidated by a later re-queue or defer are skipped)."""
        heap = self._deferred_heap
        now = self.sim.now
        while heap and heap[0][0] <= now:
            until, bid = heapq.heappop(heap)
            if self._repl_deferred.get(bid) != until:
                continue  # stale (re-queued, re-deferred, or resolved)
            del self._repl_deferred[bid]
            if bid in self._needed:
                self._queue_replication(bid)

    def _rearm_deferred_replications(self) -> None:
        """Membership event (a datanode (re-)registered): every deferred
        block may have a target or source again — retry now instead of
        waiting out the backoff."""
        if not self._repl_deferred:
            return
        for bid in list(self._repl_deferred):
            if bid in self._needed:
                self._queue_replication(bid)  # also clears the deferral
            else:
                del self._repl_deferred[bid]
        # Heap entries are now all stale; drop them wholesale.
        self._deferred_heap.clear()

    # -- invalidation queue (the namenode "trash") ---------------------------------
    def _queue_invalidation(self, host: str, block_id: int) -> None:
        self._invalidate_queue.setdefault(host, {})[block_id] = None

    def _dispatch_invalidations(self, desc: DatanodeDescriptor) -> None:
        """Piggyback up to ``invalidate_work_per_heartbeat`` delete
        commands on a heartbeat response (Hadoop's bounded
        ``dfs.block.invalidate.limit`` drain)."""
        queue = self._invalidate_queue.get(desc.host)
        if not queue:
            return
        batch = list(queue)[:self.config.invalidate_work_per_heartbeat]
        for bid in batch:
            del queue[bid]
            desc.datanode.remove_block(bid)
        self.counters.incr("replicas_trashed", len(batch))
        if not queue:
            del self._invalidate_queue[desc.host]

    def report_bad_replica(self, block_id: int, host: str) -> None:
        """A client failed to read ``block_id`` from ``host``: drop that
        replica and let the replication monitor repair.  The corrupt copy
        is also queued for deletion on the datanode — without that, the
        host's next block report would re-credit the bad replica and
        silently cancel the repair."""
        self.counters.incr("bad_replica_reports")
        self._remove_replica(block_id, host)
        desc = self._nodes.get(host)
        if desc is not None and desc.alive:
            self._queue_invalidation(host, block_id)

    #: Hadoop-flavoured alias (``DFSClient.reportBadBlocks`` path).
    note_read_failure = report_bad_replica

    def _invalidate_excess(self, info: BlockInfo, target: int) -> None:
        """Remove replicas beyond the target.  A balancer-designated source
        replica goes first; otherwise drain the most replica-crowded site
        (preserving cross-site spread)."""
        while info.live_replica_count > target:
            if info.balancer_drop is not None and \
                    info.balancer_drop in info.replicas:
                victim = info.balancer_drop
                info.balancer_drop = None
            else:
                by_site: Dict[str, List[str]] = {}
                for h in info.replicas:
                    by_site.setdefault(self.topology.site_of(h), []).append(h)
                site = max(by_site, key=lambda s: (len(by_site[s]), s))
                victim = sorted(by_site[site])[0]
            desc = self._nodes.get(victim)
            if desc is not None and desc.datanode.state == Datanode.RUNNING:
                desc.datanode.remove_block(info.block.block_id)
            info.replicas.pop(victim, None)
            self._host_blocks.get(victim, {}).pop(info.block.block_id, None)
            self.counters.incr("replicas_invalidated")

    # -- replication ----------------------------------------------------------------
    def _replication_target(self, block_id: int) -> int:
        fname = self._block_file.get(block_id)
        if fname is None:
            return self.config.replication
        return self._files[fname].replication

    def _schedule_replication_work(self, work_limit: int = 64) -> None:
        """Drain the delta-driven work queue, most endangered first.

        Cost is O(popped · log |queue|): the needed set is never re-sorted.
        A block leaves the queue once its missing count is covered by
        in-flight copies — the replica events that change that coverage
        (``block_received``, replication failure, another death) re-queue
        it.  Blocks that cannot be scheduled at all (no live source, no
        eligible target, every source at its stream cap) go to the retry
        backoff instead of straight back into the queue, so a cluster
        with nowhere to repair to does not spin the monitor."""
        self._promote_deferred_replications()
        heap = self._repl_heap
        if not heap:
            return
        live = self._live_hosts  # iterated, never copied
        scheduled = 0
        blocked: List[int] = []
        retry: List[int] = []
        while heap and scheduled < work_limit:
            prio, bid = heapq.heappop(heap)
            if self._repl_prio.get(bid) != prio:
                continue  # stale entry (block re-queued or resolved)
            del self._repl_prio[bid]
            if bid not in self._needed:
                continue
            info = self._blocks.get(bid)
            if info is None:
                self._needed.pop(bid, None)
                continue
            target = self._replication_target(bid)
            missing = target - info.live_replica_count - len(info.pending_targets)
            if missing <= 0:
                continue  # covered by in-flight copies; events re-queue
            sources = [h for h in info.replicas if self._is_usable_source(h)]
            if not sources:
                blocked.append(bid)  # no live source — back off
                continue
            size = info.block.size
            targets = self.placement.choose_targets(
                None, missing, {**info.replicas, **info.pending_targets},
                live, lambda h: self._can_host_store(h, size),
                site_index=self._live_index)
            launched = 0
            capped = False
            for tgt in targets:
                # Tie-break by hostname so the choice never depends on
                # replica-map iteration order.
                src = min(sources, key=lambda h: (
                    self._nodes[h].datanode.active_repl_streams, h))
                if self._nodes[src].datanode.active_repl_streams >= self.config.max_replication_streams:
                    capped = True  # per-source stream throttle hit
                    break
                info.pending_targets[tgt] = None
                self.sim.process(self._replicate(info, src, tgt),
                                 name=f"nn-repl:{bid}->{tgt}")
                scheduled += 1
                launched += 1
            if launched == 0 and not capped:
                blocked.append(bid)  # no eligible target — back off
            elif launched < missing:
                # Partial progress, or sources merely busy: streams drain
                # between ticks, so the fast retry path stays.  Re-queued
                # AFTER the loop — pushing into the heap being drained
                # would pop the same capped block again this tick, forever.
                retry.append(bid)
        for bid in retry:
            self._queue_replication(bid)
        for bid in blocked:
            self._defer_replication(bid)

    def _replicate(self, info: BlockInfo, source: str, target: str):
        """Copy one replica source→target; bookkeeping on either outcome."""
        self.counters.incr("replications_started")
        src_dn = self._nodes[source].datanode
        tgt_dn = self._nodes[target].datanode
        src_dn.active_repl_streams += 1
        try:
            # One joint demand over source disk read + network path +
            # target disk write: re-replication contends with live shuffle
            # serves and reads at the source, like a real copy.
            yield tgt_dn.receive_block(info.block, source,
                                       source_disk=src_dn.disk)
            self.counters.incr("replications_completed")
        except Exception:
            info.pending_targets.pop(target, None)
            self.counters.incr("replications_failed")
            if info.block.block_id in self._blocks and \
               info.live_replica_count < self._replication_target(info.block.block_id):
                self._needed[info.block.block_id] = None
                self._queue_replication(info.block.block_id, info)
        finally:
            src_dn.active_repl_streams -= 1

    def _is_usable_source(self, host: str) -> bool:
        desc = self._nodes.get(host)
        return (desc is not None and desc.alive
                and desc.datanode.state == Datanode.RUNNING)

    def _can_host_store(self, host: str, nbytes: float) -> bool:
        desc = self._nodes.get(host)
        return desc is not None and desc.alive and desc.datanode.can_store(nbytes)

    def choose_write_targets(self, writer: Optional[str], size: float,
                             count: int, existing: Optional[Set[str]] = None) -> List[str]:
        """Pick datanodes for a new block's replica pipeline.

        O(replicas chosen), not O(live datanodes): the believed-live host
        dict is handed over uncopied and the per-site grouping comes from
        the event-maintained :class:`~repro.hdfs.placement.LiveHostIndex`."""
        return self.placement.choose_targets(
            writer, count, set(existing or ()), self._live_hosts,
            lambda h: self._can_host_store(h, size),
            site_index=self._live_index)

    # -- queries ------------------------------------------------------------------
    def live_datanode_hosts(self) -> List[str]:
        """Hosts the namenode currently *believes* are alive (includes
        zombies — that is the point of §IV-D1).  O(live), via the index
        maintained on register/heartbeat/death events."""
        return list(self._live_hosts)

    def num_live_datanodes(self) -> int:
        """Count of believed-alive datanodes (O(1))."""
        return len(self._live_hosts)

    def datanode(self, host: str) -> Datanode:
        """The datanode object registered at ``host``."""
        return self._nodes[host].datanode

    def locate(self, block_id: int) -> List[str]:
        """Believed replica locations of a block (alive descriptors only)."""
        info = self._blocks.get(block_id)
        if info is None:
            raise HdfsError(f"unknown block {block_id}")
        return [h for h in info.replicas
                if h in self._nodes and self._nodes[h].alive]

    def block_info(self, block_id: int) -> BlockInfo:
        """Namenode-side record for a block."""
        return self._blocks[block_id]

    def under_replicated_count(self) -> int:
        """Blocks currently below their replication target (repairable —
        the terminal lost-set is tracked separately)."""
        return len(self._needed)

    def lost_block_count(self) -> int:
        """Blocks in the terminal lost-set (zero believed replicas after
        having had at least one); O(1)."""
        return len(self._lost_blocks)

    def deferred_replication_count(self) -> int:
        """Blocks parked on the replication retry backoff."""
        return len(self._repl_deferred)

    def pending_invalidation_count(self) -> int:
        """Replica delete commands queued but not yet dispatched."""
        return sum(len(q) for q in self._invalidate_queue.values())

    def missing_block_count(self) -> int:
        """Blocks with zero believed replicas."""
        return sum(1 for i in self._blocks.values() if i.live_replica_count == 0)

    def total_block_count(self) -> int:
        """All blocks in the namespace."""
        return len(self._blocks)

    # -- namespace ops ---------------------------------------------------------------
    def create_file(self, name: str, size: float,
                    replication: Optional[int] = None) -> FileInfo:
        """Create ``name`` of ``size`` bytes, split into fixed-size blocks.

        Replica placement happens when blocks are written (see
        :class:`~repro.hdfs.client.HdfsClient`) or preloaded.
        """
        if name in self._files:
            raise HdfsError(f"file exists: {name}")
        if size < 0:
            raise ValueError("file size cannot be negative")
        fi = FileInfo(name, replication or self.config.replication)
        remaining = float(size)
        index = 0
        while remaining > 0 or index == 0:
            bsize = min(self.config.block_size, remaining) if size > 0 else 0.0
            block = Block(self._next_block_id, name, bsize, index)
            self._next_block_id += 1
            fi.blocks.append(block)
            self._blocks[block.block_id] = BlockInfo(block)
            self._block_file[block.block_id] = name
            remaining -= bsize
            index += 1
            if size == 0:
                break
        self._files[name] = fi
        return fi

    def get_file(self, name: str) -> FileInfo:
        """Look up a file; raises :class:`HdfsError` if absent."""
        fi = self._files.get(name)
        if fi is None:
            raise HdfsError(f"no such file: {name}")
        return fi

    def exists(self, name: str) -> bool:
        """True if ``name`` is in the namespace."""
        return name in self._files

    def delete_file(self, name: str) -> None:
        """Remove a file: invalidate all its replicas, free namespace."""
        fi = self._files.pop(name, None)
        if fi is None:
            return
        for block in fi.blocks:
            info = self._blocks.pop(block.block_id, None)
            self._block_file.pop(block.block_id, None)
            self._needed.pop(block.block_id, None)
            self._repl_prio.pop(block.block_id, None)
            self._lost_blocks.pop(block.block_id, None)
            self._repl_deferred.pop(block.block_id, None)
            if info is None:
                continue
            for host in list(info.replicas):
                desc = self._nodes.get(host)
                if desc is not None and desc.datanode.state == Datanode.RUNNING:
                    desc.datanode.remove_block(block.block_id)
                self._host_blocks.get(host, {}).pop(block.block_id, None)

    def __repr__(self) -> str:
        return (f"<Namenode files={len(self._files)} blocks={len(self._blocks)} "
                f"datanodes={self.num_live_datanodes()}/{len(self._nodes)}>")
