"""The simulated HDFS Datanode daemon.

A datanode stores finalized block replicas on its node-local disk, sends
periodic heartbeats to the namenode, and (in HOG) runs the §IV-D1 zombie
fix: a periodic working-directory probe that shuts the daemon down when a
preempting site has deleted its files.

Failure modes
-------------
``shutdown()``
    Clean stop (graceful daemon exit): heartbeats cease immediately.
``kill()``
    Abrupt death *with* the process tree (the fixed HOG behaviour): the
    daemon stops silently; the namenode only notices when heartbeats time
    out.
``make_zombie()``
    The double-fork bug: the site killed the wrapper and wiped the working
    directory, but the daemon escaped the process tree.  It keeps
    heartbeating — so the namenode still counts its replicas — while every
    read and write against it fails.  Only the disk self-check (if
    enabled) eventually notices and shuts it down.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from ..net.fabric import NetworkFabric, TransferFailed
from ..sim.engine import Simulator
from ..sim.events import Event
from ..storage.disk import Disk, DiskFullError, DiskIOError
from .block import Block
from .config import HdfsConfig

if TYPE_CHECKING:  # pragma: no cover
    from .namenode import Namenode

__all__ = ["Datanode", "BlockReadError"]

#: Disk-usage label for HDFS block data.
HDFS_LABEL = "hdfs"


class BlockReadError(Exception):
    """A replica could not be served (missing block / dead or zombie node)."""


class Datanode:
    """One HDFS worker daemon bound to a host and its local disk."""

    RUNNING = "running"
    ZOMBIE = "zombie"
    DEAD = "dead"

    def __init__(self, sim: Simulator, host: str, disk: Disk,
                 fabric: NetworkFabric, namenode: "Namenode",
                 config: Optional[HdfsConfig] = None) -> None:
        self.sim = sim
        self.host = host
        self.disk = disk
        self.fabric = fabric
        self.namenode = namenode
        self.config = config or HdfsConfig()
        self.state = Datanode.DEAD  # not started yet
        self._blocks: Dict[int, Block] = {}
        self._hb_epoch = 0
        self._dc_epoch = 0
        self._next_report: Optional[float] = None
        #: Outbound re-replication streams currently running.
        self.active_repl_streams = 0

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> None:
        """Register with the namenode and start daemon loops."""
        if self.state != Datanode.DEAD:
            raise RuntimeError(f"datanode {self.host} already started")
        self.state = Datanode.RUNNING
        self.namenode.register_datanode(self)
        interval = self.config.block_report_interval
        self._next_report = (
            None if interval is None
            else self.sim.now + self.config.block_report_initial_delay)
        self._hb_epoch += 1
        self.sim.call_soon(self._hb_tick, self._hb_epoch)
        if self.config.disk_check_interval is not None:
            self._dc_epoch += 1
            self.sim.call_soon(self._dc_arm, self._dc_epoch)

    def shutdown(self) -> None:
        """Clean daemon exit: stop loops; namenode learns via timeout."""
        self._stop_loops()
        self.state = Datanode.DEAD

    def kill(self) -> None:
        """Abrupt death together with the process tree (preemption with the
        zombie fix in place).  In-flight I/O is aborted."""
        self._stop_loops()
        self.state = Datanode.DEAD
        self.fabric.abort_host_flows(self.host)

    def make_zombie(self) -> None:
        """Enter the double-fork zombie state: working directory wiped,
        daemon still alive and heartbeating (§IV-D1)."""
        if self.state != Datanode.RUNNING:
            return
        self.state = Datanode.ZOMBIE
        self.disk.wipe()
        self._blocks.clear()

    def _stop_loops(self) -> None:
        # Invalidate both cadences: ticks already on the heap fire as
        # no-ops against the stale epoch tokens.
        self._hb_epoch += 1
        self._dc_epoch += 1

    @property
    def is_alive(self) -> bool:
        """True while the daemon process exists (running or zombie)."""
        return self.state in (Datanode.RUNNING, Datanode.ZOMBIE)

    # -- daemon loops -------------------------------------------------------------
    def _hb_tick(self, epoch: int) -> None:
        """Periodic status report; zombies keep reporting (the bug).

        The cadence also carries the hourly full block report (Hadoop's
        ``dfs.blockreport.intervalMsec``), piggybacked on the heartbeat
        so it costs no extra simulator events: the first report goes
        ``block_report_initial_delay`` after startup, then every
        ``block_report_interval``.  A zombie's report is empty — and
        since the namenode's report processing is additive-only, that
        does NOT clear its believed replicas, preserving the §IV-D1
        zombie semantics (the namenode keeps crediting a zombie's
        blocks until the disk self-check shuts the daemon down).

        Runs on the callback-timer fast path: each tick re-arms via
        ``call_after`` with the epoch token captured at :meth:`start`;
        ``_stop_loops`` bumps the epoch so stale ticks no-op.
        """
        if epoch != self._hb_epoch or not self.is_alive:
            return
        self.namenode.heartbeat(self)
        next_report = self._next_report
        if next_report is not None and self.sim.now >= next_report:
            self.namenode.process_block_report(
                self.host, self.block_report())
            self._next_report = self.sim.now + self.config.block_report_interval
        # Ask per beat: the period adapts to cluster size.
        self.sim.call_after(
            self.namenode.heartbeat_interval(), self._hb_tick, epoch)

    def _dc_arm(self, epoch: int) -> None:
        """Arm the first disk probe one full interval out (the generator
        version slept before its first probe)."""
        if epoch != self._dc_epoch or not self.is_alive:
            return
        self.sim.call_after(
            self.config.disk_check_interval, self._dc_tick, epoch)

    def _dc_tick(self, epoch: int) -> None:
        """The §IV-D1 fix: probe the working directory every
        ``disk_check_interval`` seconds; shut down when it is gone."""
        if epoch != self._dc_epoch or not self.is_alive:
            return
        if not self.disk.probe():
            self.shutdown()
            return
        self.sim.call_after(
            self.config.disk_check_interval, self._dc_tick, epoch)

    # -- block storage --------------------------------------------------------------
    @property
    def block_ids(self):
        """IDs of locally stored replicas."""
        return set(self._blocks)

    def block_report(self):
        """The (re-)registration block report: stored replica ids in
        deterministic insertion order, without copying into a set."""
        return self._blocks.keys()

    def has_block(self, block_id: int) -> bool:
        """True if a finalized replica is stored here."""
        return block_id in self._blocks

    def num_blocks(self) -> int:
        """Number of stored replicas."""
        return len(self._blocks)

    def usable_space(self) -> float:
        """Free bytes the datanode is willing to fill with block data."""
        if self.state != Datanode.RUNNING:
            return 0.0
        reserve = self.disk.capacity * self.config.disk_reserve_fraction
        return max(0.0, self.disk.free - reserve)

    def can_store(self, nbytes: float) -> bool:
        """Capacity test used by placement policies."""
        return self.usable_space() >= nbytes

    def add_block_instant(self, block: Block) -> None:
        """Place a replica without simulating I/O (experiment preload)."""
        if self.state != Datanode.RUNNING:
            raise DiskIOError(f"datanode {self.host} is not running")
        if block.block_id in self._blocks:
            return
        self.disk.allocate(block.size, HDFS_LABEL)
        self._blocks[block.block_id] = block
        self.namenode.block_received(block.block_id, self.host)

    def receive_block(self, block: Block, source: str,
                      source_disk: Optional[Disk] = None) -> Event:
        """Receive a replica from ``source`` over the network and persist it.

        ``source_disk`` (when given and sharing our channel) joins the
        stream's constraint set with its *read* bandwidth: the move is then
        one demand rated end-to-end over source disk read, the network
        path, and our disk write — what a balancer migration or
        re-replication physically is.  Without it only our write side and
        the network are modelled.

        Returns an event succeeding once the replica is finalized and
        reported, or failing with ``DiskFullError`` / ``TransferFailed`` /
        ``DiskIOError``.
        """
        done = self.sim.event()
        self.sim.process(
            self._receive_block_proc(block, source, done, source_disk),
            name=f"dn-recv:{self.host}:{block.block_id}")
        return done

    def _receive_block_proc(self, block: Block, source: str, done: Event,
                            source_disk: Optional[Disk] = None):
        if self.state != Datanode.RUNNING:
            done.fail(DiskIOError(f"datanode {self.host} not running"))
            done.defused()
            return
        try:
            self.disk.allocate(block.size, HDFS_LABEL)
        except (DiskFullError, DiskIOError) as exc:
            done.fail(exc)
            done.defused()
            return
        start = self.sim.now
        try:
            if self.disk.shares_channel_with(self.fabric):
                # Streaming receive: one demand jointly constrained by the
                # network path (source NIC, WAN legs, our NIC) and our disk
                # write bandwidth — data is persisted as it arrives, like a
                # real pipelined block write.  A shared-channel source disk
                # adds its read side, so the move competes with live
                # shuffle serves and HDFS reads at the source.
                extras = [self.disk.write_constraint]
                src_disk = (source_disk if source_disk is not None
                            and source_disk.shares_channel_with(self.fabric)
                            else None)
                if src_disk is not None:
                    extras.insert(0, src_disk.read_constraint)
                yield self.fabric.transfer(
                    source, self.host, block.size,
                    extra_constraints=extras,
                    validate=lambda: self.disk.alive and (
                        src_disk is None or src_disk.alive))
            else:
                yield self.fabric.transfer(source, self.host, block.size)
                yield self.disk.write(block.size)
        except (TransferFailed, DiskIOError) as exc:
            if self.disk.alive:
                self.disk.release(block.size, HDFS_LABEL)
            done.fail(exc)
            done.defused()
            return
        if self.state != Datanode.RUNNING:
            done.fail(DiskIOError(f"datanode {self.host} died finalizing block"))
            done.defused()
            return
        self._blocks[block.block_id] = block
        tr = self.namenode.tracer
        if tr is not None:
            tr.span("hdfs", f"recv-b{block.block_id}", start, self.sim.now,
                    track=self.host, args={"from": source,
                                           "bytes": block.size})
        self.namenode.block_received(block.block_id, self.host)
        done.succeed(block)

    def serve_read(self, block_id: int, reader: str) -> Event:
        """Stream a replica to ``reader``: local disk read + network transfer.

        Fails with :class:`BlockReadError` when the replica is absent or
        the daemon is a zombie (working directory wiped).
        """
        done = self.sim.event()
        self.sim.process(self._serve_read_proc(block_id, reader, done),
                         name=f"dn-read:{self.host}:{block_id}")
        return done

    def _serve_read_proc(self, block_id: int, reader: str, done: Event):
        if self.state != Datanode.RUNNING or block_id not in self._blocks:
            done.fail(BlockReadError(
                f"{self.host} cannot serve block {block_id} (state={self.state})"))
            done.defused()
            return
        block = self._blocks[block_id]
        start = self.sim.now
        try:
            # Streaming read: jointly constrained by our disk read
            # bandwidth and the network path to the reader.
            yield self.fabric.serve_stream(self.host, reader, block.size,
                                           self.disk)
        except (DiskIOError, TransferFailed) as exc:
            done.fail(BlockReadError(str(exc)))
            done.defused()
            return
        tr = self.namenode.tracer
        if tr is not None:
            tr.span("hdfs", f"read-b{block_id}", start, self.sim.now,
                    track=self.host, args={"to": reader,
                                           "bytes": block.size})
        done.succeed(block)

    def remove_block(self, block_id: int) -> None:
        """Invalidate a replica (namenode command): free its disk space."""
        block = self._blocks.pop(block_id, None)
        if block is not None and self.disk.alive:
            self.disk.release(block.size, HDFS_LABEL)

    def __repr__(self) -> str:
        return f"<Datanode {self.host} {self.state} blocks={len(self._blocks)}>"
