"""HDFS client operations: pipelined writes, locality-aware reads, preload.

Reads pick the closest believed replica — same node, then same site, then
remote — exactly the preference order that makes HOG's high replication
factor pay off ("The high replication factor for HOG allows for very good
data locality", §IV-D2).  A failed read (dead or zombie replica) is
reported to the namenode and retried from the next-closest replica.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..net.fabric import NetworkFabric
from ..sim.engine import Simulator
from ..sim.events import Event
from ..sim.util import gather_safe
from .block import Block, FileInfo
from .datanode import Datanode
from .namenode import HdfsError, Namenode

__all__ = ["HdfsClient", "BlockUnavailableError", "ReadResult"]


class BlockUnavailableError(Exception):
    """No believed replica of a block could actually be read."""


class ReadResult:
    """Outcome of a successful block read."""

    __slots__ = ("block", "source", "distance")

    def __init__(self, block: Block, source: str, distance: int) -> None:
        self.block = block
        #: Host the data was streamed from.
        self.source = source
        #: Hadoop-style distance from the reader (0 node, 2 site, 4 remote).
        self.distance = distance


class HdfsClient:
    """A client bound to the host it runs on (a worker node or the
    central server)."""

    def __init__(self, sim: Simulator, namenode: Namenode,
                 fabric: NetworkFabric, host: str) -> None:
        self.sim = sim
        self.namenode = namenode
        self.fabric = fabric
        self.host = host

    # -- write --------------------------------------------------------------------
    def write_file(self, name: str, size: float,
                   replication: Optional[int] = None) -> Event:
        """Create and write ``name``; returns an event with the FileInfo.

        Each block is written through a replication pipeline: the client
        streams to the first datanode, which streams to the second, and so
        on.  The hops overlap (streaming), so the block completes when the
        slowest hop drains.  Losing pipeline members mid-write is
        tolerated as long as at least one replica lands; the replication
        monitor repairs the rest.
        """
        done = self.sim.event()
        self.sim.process(self._write_file_proc(name, size, replication, done),
                         name=f"hdfs-write:{name}")
        return done

    def _write_file_proc(self, name: str, size: float,
                         replication: Optional[int], done: Event):
        try:
            fi = self.namenode.create_file(name, size, replication)
        except (HdfsError, ValueError) as exc:
            done.fail(exc)
            done.defused()
            return
        for block in fi.blocks:
            if block.size <= 0:
                continue
            try:
                yield self.sim.process(self._write_block(fi, block))
            except HdfsError as exc:
                self.namenode.delete_file(name)
                done.fail(exc)
                done.defused()
                return
        done.succeed(fi)

    def _write_block(self, fi: FileInfo, block: Block):
        targets = self.namenode.choose_write_targets(
            self.host, block.size, fi.replication)
        if not targets:
            raise HdfsError(f"no datanodes available to write {block!r}")
        # Pipeline: hop i streams from hop i-1 (hop 0 from the client).
        events = []
        prev = self.host
        for host in targets:
            dn = self.namenode.datanode(host)
            events.append(dn.receive_block(block, prev))
            prev = host
        outcomes = yield gather_safe(self.sim, events)
        if not any(o.ok for o in outcomes):
            raise HdfsError(f"entire write pipeline failed for {block!r}")

    # -- read ------------------------------------------------------------------------
    def read_block(self, block_id: int) -> Event:
        """Read one block; succeeds with a :class:`ReadResult`."""
        done = self.sim.event()
        self.sim.process(self._read_block_proc(block_id, done),
                         name=f"hdfs-read:{block_id}@{self.host}")
        return done

    def _read_block_proc(self, block_id: int, done: Event):
        try:
            locations = self.namenode.locate(block_id)
        except HdfsError as exc:
            done.fail(BlockUnavailableError(str(exc)))
            done.defused()
            return
        ordered = sorted(locations,
                         key=lambda h: (self.fabric.topology.distance(self.host, h), h))
        for host in ordered:
            dn = self.namenode.datanode(host)
            try:
                block = yield dn.serve_read(block_id, self.host)
            except Exception:
                # Dead/zombie replica: tell the namenode, try the next one.
                self.namenode.report_bad_replica(block_id, host)
                continue
            done.succeed(ReadResult(block, host,
                                    self.fabric.topology.distance(self.host, host)))
            return
        done.fail(BlockUnavailableError(
            f"block {block_id}: no readable replica among {len(ordered)} believed"))
        done.defused()

    # -- preload ---------------------------------------------------------------------
    def preload_file(self, name: str, size: float,
                     replication: Optional[int] = None) -> FileInfo:
        """Create ``name`` and place replicas instantly (no simulated I/O).

        Used by the experiment harness for the "upload input data" step
        that happens before the measured workload starts (§IV-A).
        """
        fi = self.namenode.create_file(name, size, replication)
        for block in fi.blocks:
            if block.size <= 0:
                continue
            targets = self.namenode.choose_write_targets(None, block.size,
                                                         fi.replication)
            if not targets:
                self.namenode.delete_file(name)
                raise HdfsError(f"no capacity to preload {name}")
            for host in targets:
                self.namenode.datanode(host).add_block_instant(block)
        return fi
