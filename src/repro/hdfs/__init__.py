"""Simulated HDFS: namenode, datanodes, placement, replication, balancer."""

from .balancer import Balancer, BalancerReport
from .block import Block, BlockInfo, FileInfo
from .client import BlockUnavailableError, HdfsClient, ReadResult
from .config import GB, MB, HdfsConfig, hog_config, stock_hadoop_config
from .datanode import BlockReadError, Datanode
from .namenode import DatanodeDescriptor, HdfsError, Namenode
from .placement import (
    LiveHostIndex,
    PlacementError,
    PlacementPolicy,
    RandomPolicy,
    SiteAwarePolicy,
)

__all__ = [
    "Block",
    "BlockInfo",
    "FileInfo",
    "HdfsConfig",
    "stock_hadoop_config",
    "hog_config",
    "MB",
    "GB",
    "Namenode",
    "DatanodeDescriptor",
    "HdfsError",
    "Datanode",
    "BlockReadError",
    "HdfsClient",
    "ReadResult",
    "BlockUnavailableError",
    "PlacementPolicy",
    "LiveHostIndex",
    "SiteAwarePolicy",
    "RandomPolicy",
    "PlacementError",
    "Balancer",
    "BalancerReport",
]
